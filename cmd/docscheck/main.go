// Command docscheck lints the repository's markdown documentation with no
// dependencies beyond the standard library:
//
//   - every relative link resolves to an existing file, and a #fragment
//     resolves to a real heading anchor in the target (GitHub slug rules);
//   - a curated list of common misspellings is absent from prose;
//   - every metric name documented in a table under a "metric" heading
//     (inline-code, dotted-lowercase, e.g. `scan.tiles_cached`) exists as
//     a string literal in the repository's Go sources, so runbooks cannot
//     drift from the telemetry they describe. Span metrics derived by
//     obs.Begin (`stage.X.seconds`, `stage.X.items`) resolve through
//     their base name.
//
// HTTP(S) and mailto links are not fetched (CI must not depend on the
// network). Fenced code blocks and inline code spans are ignored for the
// link and spelling checks, so JSON snippets like [x0,y0,x1,y1] never
// false-positive.
//
// Usage:
//
//	docscheck [files or directories...]
//
// Directories are walked for *.md (skipping dot-directories). With no
// arguments the current directory is walked. Exit status 1 means findings
// were printed, one per line, as file:line: message.
package main

import (
	"fmt"
	"go/scanner"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files, goFiles []string
	for _, root := range roots {
		fi, err := os.Stat(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			switch {
			case strings.EqualFold(filepath.Ext(path), ".md"):
				files = append(files, path)
			case filepath.Ext(path) == ".go":
				goFiles = append(goFiles, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
	}
	literals, err := goStringLiterals(goFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}

	var findings []string
	anchors := map[string]map[string]bool{} // file path -> set of heading slugs
	for _, f := range files {
		if _, err := anchorsOf(f, anchors); err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
	}
	for _, f := range files {
		fs, err := checkFile(f, anchors, literals)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s) in %d file(s)\n", len(findings), len(files))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) clean\n", len(files))
}

var (
	linkRE    = regexp.MustCompile(`\[[^\]]*\]\(([^()\s]+)\)`)
	headingRE = regexp.MustCompile("^#{1,6}\\s+(.*)$")
	inlineRE  = regexp.MustCompile("`[^`]*`")
	spanRE    = regexp.MustCompile("`([^`]+)`")
	wordRE    = regexp.MustCompile(`[A-Za-z]+`)
	// metricRE matches a dotted lowercase metric identifier
	// (scan.tiles_cached, dist.shards_cached, stage.scan.tiles.seconds).
	metricRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
)

// notMetricExt screens out metric-shaped file names (store.jsonl,
// scan.go) that legitimately appear in operations tables.
var notMetricExt = map[string]bool{
	".go": true, ".md": true, ".txt": true, ".json": true, ".jsonl": true,
	".yml": true, ".yaml": true, ".sh": true, ".out": true, ".ckpt": true,
}

// goStringLiterals collects every interpreted and raw string literal in
// the given Go files — the universe a documented metric name must resolve
// into. Tokenizing (rather than grepping) keeps literals in comments or
// struct tags from vouching for a dead metric.
func goStringLiterals(files []string) (map[string]bool, error) {
	lits := map[string]bool{}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		var sc scanner.Scanner
		sc.Init(fset.AddFile(path, fset.Base(), len(data)), data, nil, 0)
		for {
			_, tok, lit := sc.Scan()
			if tok == token.EOF {
				break
			}
			if tok != token.STRING {
				continue
			}
			if s, err := strconv.Unquote(lit); err == nil {
				lits[s] = true
			}
		}
	}
	return lits, nil
}

// metricKnown reports whether a documented metric name resolves to a Go
// string literal. obs.Begin derives its span metrics from a base name —
// Begin(tel, reg, "scan.tiles") emits stage.scan.tiles.seconds and
// stage.scan.tiles.items — so those resolve through the base literal
// after stripping the derived prefix and suffix.
func metricKnown(name string, literals map[string]bool) bool {
	if literals[name] {
		return true
	}
	for _, suffix := range []string{".seconds", ".items"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if literals[base] {
			return true
		}
		if span, ok := strings.CutPrefix(base, "stage."); ok && literals[span] {
			return true
		}
	}
	return false
}

// misspellings maps common errors to their corrections. Curated: only
// unambiguous misspellings belong here, never words with a legitimate
// alternate spelling.
var misspellings = map[string]string{
	"teh":          "the",
	"recieve":      "receive",
	"recieved":     "received",
	"seperate":     "separate",
	"seperately":   "separately",
	"occured":      "occurred",
	"occurence":    "occurrence",
	"definately":   "definitely",
	"accross":      "across",
	"untill":       "until",
	"wich":         "which",
	"enviroment":   "environment",
	"existance":    "existence",
	"neccessary":   "necessary",
	"necessery":    "necessary",
	"paramter":     "parameter",
	"paramters":    "parameters",
	"propogate":    "propagate",
	"sucessful":    "successful",
	"succesful":    "successful",
	"supress":      "suppress",
	"thier":        "their",
	"transfering":  "transferring",
	"comparision":  "comparison",
	"overriden":    "overridden",
	"reproducable": "reproducible",
	"dependancy":   "dependency",
	"dependancies": "dependencies",
	"benchamrk":    "benchmark",
	"lenght":       "length",
	"heigth":       "height",
	"retreive":     "retrieve",
	"calender":     "calendar",
	"guage":        "gauge",
	"recurr":       "recur",
	"resumeable":   "resumable",
}

// anchorsOf computes (and caches) the set of GitHub-style heading anchors
// in a markdown file.
func anchorsOf(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	clean := filepath.Clean(path)
	if a, ok := cache[clean]; ok {
		return a, nil
	}
	data, err := os.ReadFile(clean)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		// GitHub disambiguates duplicate headings with -1, -2, …
		if set[slug] {
			for i := 1; ; i++ {
				s := fmt.Sprintf("%s-%d", slug, i)
				if !set[s] {
					slug = s
					break
				}
			}
		}
		set[slug] = true
	}
	cache[clean] = set
	return set, nil
}

// slugify applies GitHub's heading-anchor rules: lowercase, drop
// everything but letters, digits, spaces, hyphens, and underscores, then
// replace spaces with hyphens. Inline code backticks and link syntax are
// stripped first.
func slugify(heading string) string {
	h := strings.NewReplacer("`", "", "[", "", "]", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(h)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func checkFile(path string, anchorCache map[string]map[string]bool, literals map[string]bool) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(lineNo int, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s:%d: %s", path, lineNo, fmt.Sprintf(format, args...)))
	}
	inFence := false
	inMetricSection := false
	for i, line := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRE.FindStringSubmatch(line); m != nil {
			inMetricSection = strings.Contains(strings.ToLower(m[1]), "metric")
		}
		// Metric-name drift check: inside a section whose heading mentions
		// metrics, every metric-shaped inline code span in a table row must
		// resolve to a Go string literal (see metricKnown).
		if inMetricSection && strings.HasPrefix(strings.TrimSpace(line), "|") {
			for _, m := range spanRE.FindAllStringSubmatch(line, -1) {
				name := m[1]
				if !metricRE.MatchString(name) || notMetricExt[filepath.Ext(name)] {
					continue
				}
				if !metricKnown(name, literals) {
					report(lineNo, "documented metric %q not found as a string literal in any Go source", name)
				}
			}
		}
		prose := inlineRE.ReplaceAllString(line, "")

		for _, m := range linkRE.FindAllStringSubmatch(prose, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			dest := filepath.Clean(path)
			if file != "" {
				dest = filepath.Join(filepath.Dir(path), file)
				fi, err := os.Stat(dest)
				if err != nil {
					report(lineNo, "broken link %q: %s does not exist", target, dest)
					continue
				}
				if fi.IsDir() || frag == "" {
					continue
				}
				if !strings.EqualFold(filepath.Ext(dest), ".md") {
					continue // anchors are only checkable in markdown
				}
			}
			if frag != "" {
				set, err := anchorsOf(dest, anchorCache)
				if err != nil {
					return nil, err
				}
				if !set[frag] {
					report(lineNo, "broken anchor %q: no heading in %s slugs to %q", target, dest, frag)
				}
			}
		}

		for _, w := range wordRE.FindAllString(prose, -1) {
			if fix, ok := misspellings[strings.ToLower(w)]; ok {
				report(lineNo, "misspelling %q (want %q)", w, fix)
			}
		}
	}
	return findings, nil
}
