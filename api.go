package hotspot

// The public API: the implementation lives under internal/ (one package
// per subsystem; see README Architecture), and this façade re-exports the
// surface a downstream user needs — training, detection, scoring, model
// persistence, benchmark generation, and the clip/layout types they
// operate on. Type aliases keep the façade zero-cost: values flow between
// the façade and the internal packages without conversion.

import (
	"context"
	"io"

	"hotspot/internal/clip"
	"hotspot/internal/core"
	"hotspot/internal/dist"
	"hotspot/internal/geom"
	"hotspot/internal/iccad"
	"hotspot/internal/layout"
	"hotspot/internal/obs"
	"hotspot/internal/server"
	"hotspot/internal/train"
)

// Geometry types.
type (
	// Coord is a layout coordinate in database units (1 dbu = 1 nm).
	Coord = geom.Coord
	// Point is a 2-D layout point.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Layout is a flat multi-layer layout with spatial indexing.
	Layout = layout.Layout
	// Layer is a GDSII layer number.
	Layer = layout.Layer
)

// R constructs a normalized rectangle.
func R(x0, y0, x1, y1 Coord) Rect { return geom.R(x0, y0, x1, y1) }

// Pt constructs a point.
func Pt(x, y Coord) Point { return geom.Pt(x, y) }

// NewLayout creates an empty layout.
func NewLayout(name string) *Layout { return layout.New(name) }

// Clip types.
type (
	// Pattern is one layout clip: a window of geometry with a designated
	// core region and an optional label.
	Pattern = clip.Pattern
	// Label classifies a pattern (Hotspot / NonHotspot).
	Label = clip.Label
	// ClipSpec fixes the clip geometry (core and clip side lengths).
	ClipSpec = clip.Spec
)

// Pattern labels.
const (
	Hotspot    = clip.Hotspot
	NonHotspot = clip.NonHotspot
)

// DefaultClipSpec is the ICCAD-2012 contest clip geometry: a 1.2 µm core
// inside a 4.8 µm clip.
var DefaultClipSpec = clip.DefaultSpec

// Framework types.
type (
	// Config carries every tunable of the detection framework.
	Config = core.Config
	// Detector is a trained hotspot-detection model.
	Detector = core.Detector
	// Report is the outcome of evaluating a testing layout.
	Report = core.Report
	// Score grades a report against ground truth per the contest rules.
	Score = core.Score
)

// DefaultConfig returns the paper's §V parameterization.
func DefaultConfig() Config { return core.DefaultConfig() }

// BasicConfig returns the single-huge-kernel baseline configuration
// (Table III "Basic").
func BasicConfig() Config { return core.BasicConfig() }

// Train builds a detector from a labelled training clip set.
func Train(train []*Pattern, cfg Config) (*Detector, error) {
	return core.Train(train, cfg)
}

// LoadModel restores a detector saved with Detector.Save.
func LoadModel(r io.Reader) (*Detector, error) { return core.Load(r) }

// Model-selection types. TrainCV replaces the fixed §V hyperparameters
// with a per-topology-group cross-validated search: stratified k-fold CV
// over a (C, gamma, tolerance) grid with successive-halving pruning,
// fanned out across (group, fold, candidate) on a bounded worker pool.
// Results are deterministic for a fixed seed at any worker count, and the
// selection provenance is persisted inside the model artifact (see
// README, "Training & model selection").
type (
	// CVOptions parameterizes the search (folds, seed, workers, grid);
	// its zero value selects 4 folds, the default grid, and one worker
	// per CPU.
	CVOptions = train.Options
	// CVGrid is the searched hyperparameter lattice.
	CVGrid = train.Grid
	// CVResult is the search outcome: per-group winners, every trial's
	// metrics, and the final trained Detector.
	CVResult = train.Result
	// GroupParams is one topology group's hyperparameter override
	// (Config.GroupParams).
	GroupParams = core.GroupParams
	// Selection is the provenance header a cross-validated model carries
	// (Detector.Selection()): seed, grid, fold scores, per-group winners.
	Selection = core.Selection
)

// DefaultCVGrid returns the built-in search lattice: four decades of C
// and gamma around the paper's (1000, 0.01) seed.
func DefaultCVGrid() CVGrid { return train.DefaultGrid() }

// TrainCV builds a detector from a labelled training clip set with
// cross-validated per-group hyperparameter selection. The returned
// result carries the final detector (CVResult.Detector) plus the full
// per-group search record.
func TrainCV(patterns []*Pattern, cfg Config, opts CVOptions) (*CVResult, error) {
	return train.CrossValidate(patterns, cfg, opts)
}

// Evaluate grades reported hotspot cores against ground-truth cores.
func Evaluate(reported, truth []Rect, areaDBU2 int64, spec ClipSpec) Score {
	return core.EvaluateReport(reported, truth, areaDBU2, spec)
}

// Tiled scanning types. Detector.ScanTiled / ScanTiledContext /
// ScanGDSContext evaluate chip-scale layouts in bounded memory: the
// layout is cut into halo-overlapped tiles processed by a work-stealing
// worker pool, with checkpoint/resume and a report identical to Detect
// (see docs/ARCHITECTURE.md, "Chip-scale tiled scanning").
type (
	// ScanOptions parameterizes a tiled scan (tile side, workers,
	// checkpoint path, per-tile memory budget); its zero value is usable.
	ScanOptions = core.ScanOptions
	// ScanStats reports a tiled scan's orchestration counters.
	ScanStats = core.ScanStats
)

// Distributed scanning types. ScanDistributed shards the tile grid into
// contiguous bands and fans them out across a fleet of hotspotd backends
// over /v1/scan, merging per-shard candidates through the canonical seam
// dedup so the report is identical to a local ScanTiled run — with
// per-shard deadlines, retry/backoff, failover re-dispatch, and graceful
// degradation to the local path when every backend is down (see
// docs/ARCHITECTURE.md, "Distributed sharded scanning").
type (
	// DistOptions parameterizes a distributed scan (backends, shard
	// count, deadlines, retry budget, checkpoint); only Backends is
	// required.
	DistOptions = dist.Options
	// DistStats reports a distributed scan's orchestration counters
	// (shards done/resumed/redispatched, retries, per-backend scorecard).
	DistStats = dist.Stats
	// BackendStatus is one backend's end-of-scan scorecard.
	BackendStatus = dist.BackendStatus
)

// ErrAllBackendsDown reports that every backend was unreachable and local
// fallback was disabled (DistOptions.NoLocalFallback).
var ErrAllBackendsDown = dist.ErrAllBackendsDown

// ScanDistributed evaluates a testing layout across opts.Backends. The
// detector plans the shards, serves as the local fallback, and assembles
// the final report; every backend must serve the same model.
func ScanDistributed(ctx context.Context, det *Detector, l *Layout, opts DistOptions) (Report, DistStats, error) {
	return dist.Scan(ctx, det, l, opts)
}

// Observability types. Set Config.Obs to a NewRegistry() to collect
// counters and duration histograms across training and detection; set
// Config.Progress to stream per-round training events. Report.Telemetry
// and Detector.Telemetry() carry the per-stage breakdowns either way.
type (
	// Registry collects counters, gauges, and duration histograms. A nil
	// *Registry is valid and free: every instrument it hands out no-ops.
	Registry = obs.Registry
	// Telemetry is a pipeline run's per-stage timing/count record.
	Telemetry = obs.Telemetry
	// StageStats is one pipeline stage's duration and item count.
	StageStats = obs.StageStats
	// Event is one training progress event (Config.Progress).
	Event = obs.Event
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Serving types. Server is hotspotd as a library: an HTTP/JSON inference
// API (batch clip classification, layout scanning, hot model reload,
// health/readiness, pprof + expvar) over a Detector, with a bounded
// batching worker pool, per-request deadlines, 429 backpressure, and
// graceful drain. See `hotspot serve` for the packaged daemon.
type (
	// Server serves a Detector over HTTP.
	Server = server.Server
	// ServerConfig parameterizes the server; its zero value gets
	// serving-sensible defaults.
	ServerConfig = server.Config
)

// NewServer loads the model at cfg.ModelPath and serves it.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewServerWithDetector serves an in-process detector (trained or loaded
// by the caller).
func NewServerWithDetector(det *Detector, cfg ServerConfig) (*Server, error) {
	return server.NewWithDetector(det, cfg)
}

// Benchmark types.
type (
	// Benchmark is a generated synthetic benchmark: training clips, a
	// testing layout, and ground-truth hotspot cores.
	Benchmark = iccad.Benchmark
	// BenchmarkConfig parameterizes benchmark generation.
	BenchmarkConfig = iccad.Config
)

// GenerateBenchmark builds a benchmark deterministically.
func GenerateBenchmark(cfg BenchmarkConfig) *Benchmark { return iccad.Generate(cfg) }

// BenchmarkSuite lists the six ICCAD-2012-style benchmark configurations.
func BenchmarkSuite() []BenchmarkConfig {
	out := make([]BenchmarkConfig, len(iccad.Suite))
	copy(out, iccad.Suite)
	return out
}
