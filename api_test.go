package hotspot_test

import (
	"bytes"
	"testing"

	"hotspot"
)

// TestPublicAPIEndToEnd exercises the façade exactly the way a downstream
// user would: generate, train, save/load, detect, score.
func TestPublicAPIEndToEnd(t *testing.T) {
	bench := hotspot.GenerateBenchmark(hotspot.BenchmarkConfig{
		Name: "api_test", Process: "32nm",
		W: 60000, H: 60000,
		TestHS: 10, TrainHS: 30, TrainNHS: 120,
		FillFactor: 0.5, Seed: 23, Workers: 8,
	})
	if bench.Stats().TestHS != 10 {
		t.Fatalf("stats: %+v", bench.Stats())
	}

	det, err := hotspot.Train(bench.Train, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hotspot.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rep := loaded.Detect(bench.Test)
	score := hotspot.Evaluate(rep.Hotspots, bench.TruthCores, bench.Test.Area(), bench.Spec)
	t.Logf("public API: %s", score)
	if score.Actual != 10 {
		t.Fatalf("actual hotspots: %d", score.Actual)
	}
	if score.Hits < score.Actual/2 {
		t.Fatalf("hit rate collapsed through the façade: %+v", score)
	}
}

func TestPublicAPITypes(t *testing.T) {
	r := hotspot.R(0, 0, 1200, 1200)
	if r.Area() != 1200*1200 {
		t.Fatalf("area: %d", r.Area())
	}
	l := hotspot.NewLayout("t")
	l.AddRect(1, r)
	if l.NumRects() != 1 {
		t.Fatal("layout add failed")
	}
	if hotspot.DefaultClipSpec.Ambit() != 1800 {
		t.Fatalf("ambit: %d", hotspot.DefaultClipSpec.Ambit())
	}
	p := &hotspot.Pattern{
		Window: hotspot.R(0, 0, 4800, 4800),
		Core:   hotspot.R(1800, 1800, 3000, 3000),
		Label:  hotspot.Hotspot,
	}
	if p.Label != hotspot.Hotspot {
		t.Fatal("label")
	}
	if len(hotspot.BenchmarkSuite()) != 6 {
		t.Fatal("suite size")
	}
}
