package hotspot_test

import (
	"bytes"
	"testing"

	"hotspot"
)

// TestPublicAPIEndToEnd exercises the façade exactly the way a downstream
// user would: generate, train, save/load, detect, score.
func TestPublicAPIEndToEnd(t *testing.T) {
	bench := hotspot.GenerateBenchmark(hotspot.BenchmarkConfig{
		Name: "api_test", Process: "32nm",
		W: 60000, H: 60000,
		TestHS: 10, TrainHS: 30, TrainNHS: 120,
		FillFactor: 0.5, Seed: 23, Workers: 8,
	})
	if bench.Stats().TestHS != 10 {
		t.Fatalf("stats: %+v", bench.Stats())
	}

	det, err := hotspot.Train(bench.Train, hotspot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hotspot.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rep := loaded.Detect(bench.Test)
	score := hotspot.Evaluate(rep.Hotspots, bench.TruthCores, bench.Test.Area(), bench.Spec)
	t.Logf("public API: %s", score)
	if score.Actual != 10 {
		t.Fatalf("actual hotspots: %d", score.Actual)
	}
	if score.Hits < score.Actual/2 {
		t.Fatalf("hit rate collapsed through the façade: %+v", score)
	}
}

// TestPublicAPITrainCV exercises cross-validated model selection through
// the façade and checks the selection provenance survives save/load.
func TestPublicAPITrainCV(t *testing.T) {
	bench := hotspot.GenerateBenchmark(hotspot.BenchmarkConfig{
		Name: "api_cv_test", Process: "32nm",
		W: 40000, H: 40000,
		TestHS: 4, TrainHS: 16, TrainNHS: 60,
		FillFactor: 0.5, Seed: 7, Workers: 8,
	})
	res, err := hotspot.TrainCV(bench.Train, hotspot.DefaultConfig(), hotspot.CVOptions{
		Folds: 3, Seed: 42,
		Grid: hotspot.CVGrid{Cs: []float64{100, 1000}, Gammas: []float64{0.01, 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detector == nil {
		t.Fatal("no detector")
	}
	if len(res.Candidates) != 4 {
		t.Fatalf("candidates: %d, want 4", len(res.Candidates))
	}
	sel := res.Detector.Selection()
	if sel == nil || sel.Seed != 42 || sel.Folds != 3 {
		t.Fatalf("selection header: %+v", sel)
	}

	var buf bytes.Buffer
	if err := res.Detector.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hotspot.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Selection()
	if got == nil {
		t.Fatal("selection header lost across save/load")
	}
	if got.Seed != sel.Seed || got.Folds != sel.Folds || len(got.Groups) != len(sel.Groups) {
		t.Fatalf("selection round-trip: got %+v, want %+v", got, sel)
	}
	if loaded.NumKernels() != res.Detector.NumKernels() {
		t.Fatalf("kernels: %d vs %d", loaded.NumKernels(), res.Detector.NumKernels())
	}
}

func TestPublicAPITypes(t *testing.T) {
	r := hotspot.R(0, 0, 1200, 1200)
	if r.Area() != 1200*1200 {
		t.Fatalf("area: %d", r.Area())
	}
	l := hotspot.NewLayout("t")
	l.AddRect(1, r)
	if l.NumRects() != 1 {
		t.Fatal("layout add failed")
	}
	if hotspot.DefaultClipSpec.Ambit() != 1800 {
		t.Fatalf("ambit: %d", hotspot.DefaultClipSpec.Ambit())
	}
	p := &hotspot.Pattern{
		Window: hotspot.R(0, 0, 4800, 4800),
		Core:   hotspot.R(1800, 1800, 3000, 3000),
		Label:  hotspot.Hotspot,
	}
	if p.Label != hotspot.Hotspot {
		t.Fatal("label")
	}
	if len(hotspot.BenchmarkSuite()) != 6 {
		t.Fatal("suite size")
	}
}
