package hotspot

// The benchmarks in this file regenerate the paper's evaluation artifacts
// (Tables I-V and Fig. 15) and the ablation studies of the design choices
// called out in DESIGN.md §4. Each benchmark prints its table on the first
// iteration, so
//
//	go test -bench=BenchmarkTable -benchtime=1x
//
// reproduces the full evaluation. The benchmark scale defaults to a
// reduced-size suite so that the run completes in minutes; set
// HOTSPOT_BENCH_SCALE=1 for the paper-sized benchmarks.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"hotspot/internal/core"
	"hotspot/internal/experiments"
	"hotspot/internal/iccad"
)

func benchScale() float64 {
	if v := os.Getenv("HOTSPOT_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

var (
	suiteOnce sync.Once
	suiteInst *experiments.Suite
)

func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suiteInst = experiments.NewSuite(experiments.Options{Scale: benchScale()})
	})
	return suiteInst
}

// BenchmarkTable1 regenerates Table I (benchmark statistics).
func BenchmarkTable1(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			if err := s.WriteTable1(os.Stdout); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II (comparison with the contest
// winners and [14]) across the five array benchmarks.
func BenchmarkTable2(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			if err := s.WriteTable2(os.Stdout); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for _, name := range experiments.BenchNames() {
			if name == "MX_blind_partial" {
				continue
			}
			if _, err := s.Table2(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3 regenerates Table III (feature ablation) across all six
// benchmarks.
func BenchmarkTable3(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			if err := s.WriteTable3(os.Stdout); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for _, name := range experiments.BenchNames() {
			if _, err := s.Table3(name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4 regenerates Table IV (accuracy vs training data).
func BenchmarkTable4(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			if err := s.WriteTable4(os.Stdout); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates Table V (clip extraction counts).
func BenchmarkTable5(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			if err := s.WriteTable5(os.Stdout); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := s.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15 regenerates the Fig. 15 accuracy / false-alarm trade-off
// curve.
func BenchmarkFig15(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			if err := s.WriteFig15(os.Stdout, nil); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, err := s.Fig15(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationBench generates a small benchmark once for the ablation studies.
var (
	ablOnce  sync.Once
	ablBench *iccad.Benchmark
)

func ablationBench() *iccad.Benchmark {
	ablOnce.Do(func() {
		ablBench = iccad.Generate(iccad.Config{
			Name: "ablation", Process: "32nm",
			W: 60000, H: 60000,
			TestHS: 16, TrainHS: 30, TrainNHS: 120,
			FillFactor: 0.5, Seed: 11, Workers: 8,
		})
	})
	return ablBench
}

func runAblation(b *testing.B, label string, cfg core.Config) {
	bench := ablationBench()
	det, err := core.Train(bench.Train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := det.Detect(bench.Test)
		if i == 0 {
			score := core.EvaluateReport(rep.Hotspots, bench.TruthCores, bench.Test.Area(), bench.Spec)
			fmt.Printf("  ablation %-22s %s\n", label, score)
		}
	}
}

// BenchmarkAblationRouting compares all-kernel evaluation (paper-faithful)
// against RouteK density routing (DESIGN.md §4: cross-topology kernel
// evaluation).
func BenchmarkAblationRouting(b *testing.B) {
	b.Run("all-kernels", func(b *testing.B) {
		runAblation(b, "route=all", core.DefaultConfig())
	})
	b.Run("route-3", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.RouteK = 3
		runAblation(b, "route=3", cfg)
	})
	b.Run("route-8", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.RouteK = 8
		runAblation(b, "route=8", cfg)
	})
}

// BenchmarkAblationShift measures the effect of data-shifting upsampling
// (§III-D3).
func BenchmarkAblationShift(b *testing.B) {
	b.Run("shift-120", func(b *testing.B) {
		runAblation(b, "shift=120nm", core.DefaultConfig())
	})
	b.Run("shift-0", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.ShiftNM = 0
		runAblation(b, "shift=off", cfg)
	})
}

// BenchmarkAblationKernelCap measures the kernel-count bound (DESIGN.md §4:
// cluster merging beyond the paper's expected cluster count).
func BenchmarkAblationKernelCap(b *testing.B) {
	for _, cap := range []int{16, 64, 0} {
		cfg := core.DefaultConfig()
		cfg.MaxKernels = cap
		name := fmt.Sprintf("max-kernels-%d", cap)
		if cap == 0 {
			name = "max-kernels-unbounded"
		}
		b.Run(name, func(b *testing.B) {
			runAblation(b, name, cfg)
		})
	}
}

// BenchmarkTrainInstrumented quantifies the observability layer's
// training-time overhead: the identical training run with the metrics
// registry attached vs detached. The disabled path is designed to be free
// (nil instruments no-op; see the AllocsPerRun tests in internal/svm and
// internal/obs), and the enabled path should stay within noise.
func BenchmarkTrainInstrumented(b *testing.B) {
	bench := ablationBench()
	run := func(b *testing.B, cfg core.Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Train(bench.Train, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) {
		run(b, core.DefaultConfig())
	})
	b.Run("instrumented", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Obs = NewRegistry()
		run(b, cfg)
	})
}

// BenchmarkDetectInstrumented is the detection-side counterpart.
func BenchmarkDetectInstrumented(b *testing.B) {
	bench := ablationBench()
	run := func(b *testing.B, cfg core.Config) {
		det, err := core.Train(bench.Train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.Detect(bench.Test)
		}
	}
	b.Run("uninstrumented", func(b *testing.B) {
		run(b, core.DefaultConfig())
	})
	b.Run("instrumented", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Obs = NewRegistry()
		run(b, cfg)
	})
}

// BenchmarkAblationFeedback measures the feedback kernel's contribution.
func BenchmarkAblationFeedback(b *testing.B) {
	b.Run("with-feedback", func(b *testing.B) {
		runAblation(b, "feedback=on", core.DefaultConfig())
	})
	b.Run("without-feedback", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.EnableFeedback = false
		runAblation(b, "feedback=off", cfg)
	})
}

// BenchmarkClassifyBatch compares per-clip ClassifyPattern calls against
// the batched ClassifyBatch path (flat SVM layout, one DecisionBatch per
// kernel) over the ablation benchmark's training patterns.
func BenchmarkClassifyBatch(b *testing.B) {
	bench := ablationBench()
	det, err := core.Train(bench.Train, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range bench.Train {
				det.ClassifyPattern(p)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det.ClassifyBatch(bench.Train)
		}
	})
}
