#!/usr/bin/env bash
# End-to-end distributed-scan smoke: build the CLI, train and save a model,
# take a single-process tiled-scan reference report, launch two hotspotd
# backends on localhost, run a distributed scan across them, then run a
# second distributed scan during which one backend is killed mid-flight —
# both distributed reports must be byte-identical to the local reference.
#
# Mirrors the `e2e` job in .github/workflows/ci.yml; run locally with
# `make e2e`. Tunables (env): BENCH, SCALE, TILE, SHARDS, PORT1, PORT2.
set -euo pipefail

BENCH=${BENCH:-MX_benchmark1}
SCALE=${SCALE:-0.25}
TILE=${TILE:-7500}
SHARDS=${SHARDS:-4}
PORT1=${PORT1:-18311}
PORT2=${PORT2:-18312}

work=$(mktemp -d)
pids=()
cleanup() {
  local code=$?
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$work"
  exit "$code"
}
trap cleanup EXIT

bin="$work/hotspot"
echo "==> building hotspot"
go build -o "$bin" ./cmd/hotspot

echo "==> training model ($BENCH, scale $SCALE)"
"$bin" train -bench "$BENCH" -scale "$SCALE" -out "$work/model.json" >/dev/null

echo "==> local reference scan"
"$bin" scan -bench "$BENCH" -scale "$SCALE" -model "$work/model.json" \
  -tile "$TILE" -report "$work/local.json"

wait_ready() {
  local port=$1
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$port/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "backend on port $port never became ready" >&2
  return 1
}

start_backend() {
  local port=$1
  "$bin" serve -addr "127.0.0.1:$port" -model "$work/model.json" \
    -timeout 10m >"$work/backend-$port.log" 2>&1 &
  pids+=($!)
  wait_ready "$port"
}

echo "==> launching two hotspotd backends"
start_backend "$PORT1"
start_backend "$PORT2"
backends="127.0.0.1:$PORT1,127.0.0.1:$PORT2"

echo "==> distributed scan across both backends"
"$bin" scan -bench "$BENCH" -scale "$SCALE" -model "$work/model.json" \
  -tile "$TILE" -shards "$SHARDS" -backends "$backends" \
  -report "$work/dist.json"

echo "==> comparing distributed report against local reference"
diff -u "$work/local.json" "$work/dist.json"

echo "==> distributed scan with backend 2 killed mid-scan"
"$bin" scan -bench "$BENCH" -scale "$SCALE" -model "$work/model.json" \
  -tile "$TILE" -shards "$SHARDS" -backends "$backends" \
  -report "$work/dist-kill.json" &
scan_pid=$!
sleep 0.3
kill -9 "${pids[1]}" 2>/dev/null || true
wait "$scan_pid"

echo "==> comparing failover report against local reference"
diff -u "$work/local.json" "$work/dist-kill.json"

echo "e2e smoke: OK (distributed reports byte-identical to local scan)"
