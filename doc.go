// Package hotspot is a from-scratch Go reproduction of "Machine-Learning-
// Based Hotspot Detection Using Topological Classification and Critical
// Feature Extraction" (Yu, Lin, Jiang, Chiang; DAC 2013 / TCAD 2015): a
// lithography hotspot detection framework built on topological
// classification, MTCG critical feature extraction, iterative multiple
// SVM-kernel learning with a feedback kernel, density-based layout clip
// extraction, and redundant clip removal.
//
// This package is the public API (api.go): Train, Detect, Evaluate,
// LoadModel, GenerateBenchmark, the chip-scale tiled scan
// (Detector.ScanTiled, bounded memory with checkpoint/resume), the
// hotspotd inference server (NewServer), and the clip/layout types they
// operate on. The implementation lives under internal/ (geom, gds,
// layout, litho, iccad, clip, topo, mtcg, features, svm, core, scan,
// server, obs, patmatch, drc, render, bundle, experiments); the hotspot
// command (cmd/hotspot) and the examples (examples/) exercise the same
// pipeline. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation section — see docs/ARCHITECTURE.md
// for the system walkthrough, DESIGN.md for the experiment index, and
// EXPERIMENTS.md for recorded results.
package hotspot
