GO ?= go
FUZZTIME ?= 10s
STATICCHECK ?= staticcheck
GOVULNCHECK ?= govulncheck
COVERPROFILE ?= cover.out
BENCHCOUNT ?= 5

.PHONY: all build vet test test-nosimd test-race test-shuffle fuzz bench bench-svm bench-svm-json bench-scan bench-scan-json bench-scan-incremental bench-train bench-train-json bench-extract bench-extract-json docs-check check lint cover cover-check e2e

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite with the accelerated simd kernels disabled: everything must
# pass — and produce identical artifacts — on the portable reference paths
# (mirrors the CI nosimd lane).
test-nosimd:
	HOTSPOT_NOSIMD=1 $(GO) test ./...

# Full race-detector pass; the core end-to-end tests dominate the runtime
# (well past go test's default 10m per-package timeout under -race).
test-race:
	$(GO) test -race -timeout 45m ./...

# Order-independence pass: shuffle test execution order and run everything
# twice, flushing out inter-test state leaks and one-shot fixtures that
# only pass in file order.
test-shuffle:
	$(GO) test -shuffle=on -count=2 -timeout 30m ./...

# Short coverage-guided fuzz smoke on both targets (seeds always run as
# part of `make test`; this explores beyond them).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzClipJSONRoundTrip -fuzztime=$(FUZZTIME) ./internal/clip/
	$(GO) test -run='^$$' -fuzz=FuzzDirectionalStrings -fuzztime=$(FUZZTIME) ./internal/topo/

# Observability overhead guardrails (instrumented vs uninstrumented).
bench:
	$(GO) test -run='^$$' -bench='Instrumented' -benchtime=1x .

# SVM fast-path microbenchmarks (flat layout, batched decisions, SMO with
# shrinking). BENCHCOUNT repetitions make the output benchstat-ready; CI
# compares it against the committed bench-svm-baseline.txt.
bench-svm:
	$(GO) test -run='^$$' -bench='BenchmarkSMOSolve|BenchmarkDecisionBatch' \
		-count=$(BENCHCOUNT) ./internal/svm/

# Regenerate BENCH_svm.json (the repo-root before/after numbers quoted in
# README.md; see EXPERIMENTS.md).
bench-svm-json:
	HOTSPOT_BENCH_JSON=1 $(GO) test -run TestWriteBenchSVMJSON -count=1 ./internal/svm/

# Tiled-scan pipeline benchmarks (monolithic vs tiled vs GDS-sourced).
# bench-scan-baseline.txt is the committed benchstat baseline; refresh it
# from a quiet machine when the numbers move for a good reason.
bench-scan:
	$(GO) test -run='^$$' -bench='BenchmarkScanTiled' -benchtime=2x \
		-count=$(BENCHCOUNT) -timeout 40m ./internal/core/

# Regenerate BENCH_scan.json (repo-root whole-scan wall times: monolithic
# detect, tiled, GDS-sourced, incremental cold/warm; the active simd
# dispatch is recorded in the artifact — see EXPERIMENTS.md).
bench-scan-json:
	HOTSPOT_BENCH_JSON=1 $(GO) test -run TestWriteBenchScanJSON -count=1 -timeout 40m ./internal/core/

# Incremental re-scan benchmarks: empty-store fill (cold) vs fully-cached
# re-scan of an unchanged chip (warm). The warm/cold gap is the engine's
# reason to exist; bench-scan-incremental-baseline.txt is the committed
# benchstat baseline — refresh it from a quiet machine when the numbers
# move for a good reason.
bench-scan-incremental:
	$(GO) test -run='^$$' -bench='BenchmarkScanIncremental' -benchtime=2x \
		-count=$(BENCHCOUNT) -timeout 40m ./internal/core/

# Clip-evaluation fast-path benchmarks (pooled scratch + exact pre-screen
# cascade): steady-state memo-hit, forced-miss, and cascade-disabled
# regimes, reporting ns/clip and allocs/op. bench-extract-baseline.txt is
# the committed pre-fast-path baseline; CI benchstat-diffs fresh runs
# against it and separately hard-fails if the prescreen-hit steady state
# allocates (see the alloc-gate job).
bench-extract:
	$(GO) test -run='^$$' -bench='BenchmarkEvalClipPipeline' \
		-count=$(BENCHCOUNT) -timeout 30m ./internal/core/

# Regenerate BENCH_extract.json (the repo-root fast-path numbers quoted in
# EXPERIMENTS.md).
bench-extract-json:
	HOTSPOT_BENCH_JSON=1 $(GO) test -run TestWriteBenchExtractJSON -count=1 -timeout 30m ./internal/core/

# Cross-validated model-selection benchmarks (full per-group search on the
# committed train fixture corpus, all-CPU vs serial). The committed
# benchstat baseline is bench-train-baseline.txt; refresh it from a quiet
# machine when the numbers move for a good reason.
bench-train:
	$(GO) test -run='^$$' -bench='BenchmarkCrossValidate' \
		-count=$(BENCHCOUNT) -timeout 30m ./internal/train/

# Regenerate BENCH_train.json (repo-root cross-validated model-selection
# wall times, parallel vs serial, with the simd dispatch recorded — see
# EXPERIMENTS.md).
bench-train-json:
	HOTSPOT_BENCH_JSON=1 $(GO) test -run TestWriteBenchTrainJSON -count=1 -timeout 30m ./internal/train/

# Markdown documentation lint: relative links + anchors resolve, curated
# misspelling list (cmd/docscheck, no external tools).
docs-check:
	$(GO) run ./cmd/docscheck .

# Static analysis beyond vet. CI installs the two tools; locally:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest
lint: vet
	$(STATICCHECK) ./...
	$(GOVULNCHECK) ./...

# Atomic-mode coverage profile across every package.
cover:
	$(GO) test -covermode=atomic -coverprofile=$(COVERPROFILE) ./...
	@$(GO) tool cover -func=$(COVERPROFILE) | tail -n 1

# cover-check fails when total coverage drops below the committed baseline
# (coverage-baseline.txt). Raise the baseline when coverage improves; never
# lower it to make a regression pass.
cover-check: cover
	@total=$$($(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/{sub(/%/,"",$$3); print $$3}'); \
	base=$$(cat coverage-baseline.txt); \
	echo "total coverage: $$total% (baseline: $$base%)"; \
	awk -v t="$$total" -v b="$$base" 'BEGIN{exit !(t+0 >= b+0)}' || { \
		echo "FAIL: coverage $$total% fell below the $$base% baseline"; exit 1; }

# Distributed-scan end-to-end smoke: trains a model, launches two local
# hotspotd backends, runs a distributed scan (including a
# kill-one-backend-mid-scan pass), and diffs the reports against a
# single-process scan. Mirrors the CI `e2e` job.
e2e:
	bash scripts/e2e.sh

check: vet build test test-race fuzz docs-check
