GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test test-race fuzz bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full race-detector pass; the core end-to-end tests dominate the runtime
# (well past go test's default 10m per-package timeout under -race).
test-race:
	$(GO) test -race -timeout 45m ./...

# Short coverage-guided fuzz smoke on both targets (seeds always run as
# part of `make test`; this explores beyond them).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzClipJSONRoundTrip -fuzztime=$(FUZZTIME) ./internal/clip/
	$(GO) test -run='^$$' -fuzz=FuzzDirectionalStrings -fuzztime=$(FUZZTIME) ./internal/topo/

# Observability overhead guardrails (instrumented vs uninstrumented).
bench:
	$(GO) test -run='^$$' -bench='Instrumented' -benchtime=1x .

check: vet build test test-race fuzz
